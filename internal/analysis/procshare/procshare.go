// Package procshare is a static virtual-time race detector: it proves
// (or refutes, site by site) that the simulation is partitionable into
// concurrently-advancing processes, the machine-checked precondition
// for the conservative parallel-DES refactor (ROADMAP item 1).
//
// Go's runtime race detector cannot see these races: sim processes are
// cooperatively scheduled, exactly one runs at any instant, so every
// access is happens-before ordered at runtime even when two procs
// mutate the same state. The moment procs advance concurrently up to a
// lookahead horizon, that ordering evaporates — which is why the shared
// state must be found statically, before the refactor, the way the
// sharedfixture analyzer fenced PR 5's replication boundaries.
//
// The analyzer treats every Env.Go process body and every Env.At /
// Env.After scheduler callback as a concurrency root. From each root it
// collects, via the internal/analysis/callgraph index and per-function
// summaries, the mutable state the root can reach:
//
//   - package-level variables (any package, followed across package
//     boundaries via analysis facts),
//   - closure-captured variables of function-literal roots, and
//   - struct fields, identified by their field object — conservative:
//     two roots touching the same field of *different* instances are
//     still paired, because instance disjointness is exactly what the
//     partitioning refactor has to prove.
//
// A diagnostic is reported when one root writes a piece of state that a
// second co-spawnable root reads or writes — "co-spawnable" meaning
// some function (followed transitively, across packages via facts)
// spawns both, so they can coexist inside one Env. A root spawned
// inside a loop runs as multiple instances and is additionally paired
// with itself, excluding accesses made through loop-local captured
// variables (those are per-instance by construction).
//
// Exemptions, in the spirit of the determinism contract:
//
//   - accesses mediated by the sim package itself — Queue, Server and
//     Signal operations are the sanctioned lookahead boundaries, and
//     the engine's own bookkeeping (Sleep, Now) is the scheduler;
//   - state built under (*sync.Once).Do and only read afterwards
//     (read-only after construction);
//   - state that no root writes (reads alone cannot race);
//   - fields of a queue element type: a type the package instantiates
//     as a sim.Queue element (sim.NewQueue[T] or sim.NewQueue[*T]).
//     Such values are hand-off objects: ownership transfers between
//     procs through Put/Get, which are scheduler-visible lookahead
//     boundaries, so accesses before a Put and after the matching Get
//     are ordered by the queue operation itself. (Holding an alias
//     across a Put would defeat this — that gap is backstopped by the
//     -race jobs, like the other known gaps below.)
//
// Remaining findings are either fixed, suppressed line-wise with
// `//pslint:ignore procshare <reason>`, or enumerated with a written
// rationale in pslint-baseline.json so the shared-state inventory is
// burned down rather than silently ignored.
//
// Known gaps, backstopped by the -race CI jobs and the byte-identity
// regressions: calls through interfaces and function-typed values are
// not followed, taking the address of state is treated as a read, and
// code run by the experiment main goroutine between Env.Run segments is
// not a root.
package procshare

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"packetshader/internal/analysis"
	"packetshader/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name:      "procshare",
	Doc:       "flag unmediated state shared between sim proc/callback roots (the partitionability precondition for parallel DES)",
	UsesFacts: true,
	Run:       run,
}

// An Access is one kind of touch on one piece of state, the unit both
// fact types carry across package boundaries.
type Access struct {
	State string // "var <pkg>.<name>" | "field (<pkg>.<Type>).<name>" | "capture <name> (<file>:<line>)"
	Write bool
	// ViaRecv marks an access that reaches the state only through the
	// function's own receiver, so a caller binding a per-instance
	// receiver gets a per-instance access (FuncFact only; meaningless
	// in RootSummary, whose accesses are already resolved).
	ViaRecv bool
}

// FuncFact summarizes one function for callers in dependent packages:
// every piece of mutable state it can touch transitively and every proc
// root it can spawn transitively. Exported for each function
// declaration; imported at cross-package call sites.
type FuncFact struct {
	Accesses []Access
	Spawns   []string // root IDs
}

// AFact marks FuncFact as an analysis fact.
func (*FuncFact) AFact() {}

// RootSummary describes one concurrency root for dependent packages.
type RootSummary struct {
	ID       string // "<pkgpath>/<file>:<line>", unique module-wide
	Label    string // human-readable: `proc "worker" (internal/core/core.go:324)`
	Plural   bool   // spawn site sits inside a loop: many instances
	Spawns   []string
	Accesses []Access
}

// RootsFact is the package fact listing the package's roots, so
// dependent packages can pair their own roots against them.
type RootsFact struct {
	Roots []RootSummary
}

// AFact marks RootsFact as an analysis fact.
func (*RootsFact) AFact() {}

// accessKey identifies one (state, kind) pair within a package's
// analysis; accessRec carries its best local position.
type accessKey struct {
	state string
	write bool
}

type accessRec struct {
	pos token.Pos
	// perInstance marks accesses made through a loop-local variable
	// captured by a plural root literal: each instance has its own, so
	// the root is not paired with itself over them.
	perInstance bool
	// viaRecv marks a field access whose base is the enclosing method's
	// receiver (m.field, depth one). When a root literal calls a method
	// on a per-instance captured receiver, the callee's viaRecv
	// accesses are per-instance too — that is how `w := w; env.Go(...,
	// func(p){ w.run(p) })` keeps the worker's own fields out of the
	// worker×worker self-pair while fields of genuinely shared objects
	// (reached through deeper chains) stay in.
	viaRecv bool
}

// callEdge is one same-package static call site.
type callEdge struct {
	fn  *types.Func
	pos token.Pos
	// recv is the base variable of the receiver expression for a
	// method call (w.run() → w's object), nil otherwise.
	recv *types.Var
}

// bodyInfo is the direct (non-transitive) result of walking one body.
type bodyInfo struct {
	access map[accessKey]accessRec
	calls  []callEdge
	spawns map[string]token.Pos // root IDs spawned directly (or via imported facts)
}

// funcInfo augments a declared function's bodyInfo with its transitive
// summary after propagation.
type funcInfo struct {
	direct  *bodyInfo
	recv    *types.Var // method receiver, nil for plain functions
	summary map[accessKey]accessRec
	spawns  map[string]token.Pos
}

// rootRec is one concurrency root declared in the package under
// analysis.
type rootRec struct {
	id     string
	label  string
	plural bool
	pos    token.Pos
	access map[accessKey]accessRec
	spawns map[string]token.Pos
}

type analyzer struct {
	pass  *analysis.Pass
	graph *callgraph.Graph
	cgpkg *callgraph.Package
	funcs map[*types.Func]*funcInfo
	roots []*rootRec
	// queueElems holds owner names ("<pkgpath>.<Type>") of types this
	// package instantiates as sim.Queue elements; their fields are
	// queue-mediated hand-off state (see the package doc).
	queueElems map[string]bool
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Path() == analysis.SimPkgPath {
		// The engine is the mediator: its queues, servers and signals
		// are the sanctioned cross-proc channels, and its scheduler
		// bookkeeping is by definition shared. Nothing to summarize,
		// nothing to report.
		return nil
	}
	cgpkg := &callgraph.Package{Types: pass.Pkg, Info: pass.TypesInfo, Files: pass.Files}
	a := &analyzer{
		pass:       pass,
		graph:      callgraph.New(cgpkg),
		cgpkg:      cgpkg,
		funcs:      map[*types.Func]*funcInfo{},
		queueElems: map[string]bool{},
	}

	// Phase 0: collect queue element types. Instantiating sim.NewQueue[T]
	// declares T a hand-off type whose ownership moves between procs
	// through the queue, a sanctioned lookahead boundary; T's fields are
	// then exempt from sharing reports in this package (and from its
	// exported facts).
	a.scanQueueElems()

	// Phase 1: direct per-function info for every declaration.
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fi := &funcInfo{}
			if fd.Recv != nil && len(fd.Recv.List) > 0 && len(fd.Recv.List[0].Names) > 0 {
				fi.recv, _ = pass.TypesInfo.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
			}
			fi.direct = a.walkBody(fd.Body, nil, nil, fi.recv)
			a.funcs[fn] = fi
		}
	}

	// Phase 2: propagate along same-package call edges to a fixpoint,
	// giving each function its transitive access/spawn summary.
	a.propagate()

	// Phase 3: find the package's roots and collect their accesses.
	a.scanRoots()

	// Phase 4: export facts for dependent packages.
	a.exportFacts()

	// Phase 5: pair co-spawnable roots and report shared state.
	a.report()
	return nil
}

// ---- body walking ----

// walkBody inspects one body, recording direct state accesses, static
// same-package call edges, spawn sites, and — at cross-package calls —
// the callee's imported fact. rootLit non-nil marks a root function
// literal, enabling captured-variable tracking; loop is the innermost
// loop statement enclosing the root's spawn site, delimiting the
// per-instance capture scope; recv is the enclosing method's receiver
// variable for viaRecv classification (nil otherwise).
func (a *analyzer) walkBody(body ast.Node, rootLit *ast.FuncLit, loop ast.Node, recv *types.Var) *bodyInfo {
	bi := &bodyInfo{
		access: map[accessKey]accessRec{},
		spawns: map[string]token.Pos{},
	}
	skip := map[ast.Node]bool{}
	info := a.pass.TypesInfo

	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			callee := callgraph.StaticCallee(info, node)
			if callee == nil {
				return true // interface / func-value call: not followed
			}
			if isSpawn(callee) {
				// A nested spawn is its own root; its body is analyzed
				// from the root scan, not attributed to this one.
				bi.spawns[a.siteID(node.Pos())] = node.Pos()
				return false
			}
			if callee.Pkg() != nil && callee.Pkg().Path() == analysis.SimPkgPath {
				// Mediation: Queue/Server/Signal operations are the
				// sanctioned cross-proc channels, and the engine's own
				// bookkeeping is the scheduler. Arguments still count.
				return true
			}
			if callee.FullName() == "(*sync.Once).Do" {
				// Read-only-after-construction: the build runs exactly
				// once, before any concurrent reader.
				return false
			}
			if callee.Pkg() != nil && callee.Pkg() != a.pass.Pkg {
				var ff FuncFact
				if a.pass.ImportObjectFact(callee, &ff) {
					for _, acc := range ff.Accesses {
						mergeAccess(bi.access, accessKey{acc.State, acc.Write}, accessRec{pos: node.Pos()})
					}
					for _, id := range ff.Spawns {
						if _, ok := bi.spawns[id]; !ok {
							bi.spawns[id] = node.Pos()
						}
					}
				}
				return true
			}
			if callee.Pkg() == a.pass.Pkg {
				edge := callEdge{fn: callee, pos: node.Pos()}
				if sel, ok := ast.Unparen(node.Fun).(*ast.SelectorExpr); ok {
					if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
						if v, ok := info.Uses[base].(*types.Var); ok && !v.IsField() {
							edge.recv = v
						}
					}
				}
				bi.calls = append(bi.calls, edge)
			}
		case *ast.AssignStmt:
			if node.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range node.Lhs {
				a.recordWrite(bi, skip, lhs, rootLit, loop, recv)
			}
		case *ast.IncDecStmt:
			a.recordWrite(bi, skip, node.X, rootLit, loop, recv)
		case *ast.SelectorExpr:
			if skip[node] {
				return true // already recorded as the write target
			}
			if sel := info.Selections[node]; sel != nil && sel.Kind() == types.FieldVal {
				a.recordField(bi, node, false, rootLit, loop, recv)
			}
		case *ast.Ident:
			if !skip[node] {
				a.recordIdent(bi, node, false, rootLit, loop)
			}
		}
		return true
	})
	return bi
}

// recordWrite peels an assignment target to the object actually
// mutated: indexing writes into the indexed variable, field chains
// write the final selected field, `*p = x` is statically unresolvable
// and skipped.
func (a *analyzer) recordWrite(bi *bodyInfo, skip map[ast.Node]bool, e ast.Expr, rootLit *ast.FuncLit, loop ast.Node, recv *types.Var) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := a.pass.TypesInfo.Uses[id].(*types.PkgName); isPkg {
					skip[x.Sel] = true
					a.recordIdent(bi, x.Sel, true, rootLit, loop)
					return
				}
			}
			if sel := a.pass.TypesInfo.Selections[x]; sel != nil && sel.Kind() == types.FieldVal {
				skip[x] = true
				a.recordField(bi, x, true, rootLit, loop, recv)
			}
			return
		case *ast.Ident:
			skip[x] = true
			a.recordIdent(bi, x, true, rootLit, loop)
			return
		default:
			return
		}
	}
}

// recordIdent classifies one identifier access: a package-level
// variable of any package, or — inside a root literal — a captured
// variable of an enclosing function.
func (a *analyzer) recordIdent(bi *bodyInfo, id *ast.Ident, write bool, rootLit *ast.FuncLit, loop ast.Node) {
	vr, ok := a.pass.TypesInfo.Uses[id].(*types.Var)
	if !ok || vr.IsField() {
		return
	}
	if vr.Pkg() != nil && vr.Parent() == vr.Pkg().Scope() {
		key := accessKey{"var " + vr.Pkg().Path() + "." + vr.Name(), write}
		mergeAccess(bi.access, key, accessRec{pos: id.Pos()})
		return
	}
	if rootLit == nil || !within(id.Pos(), rootLit) || within(vr.Pos(), rootLit) {
		return // plain local, or not in capture position
	}
	// Captured from an enclosing function. Loop-local captures are
	// per-instance for a loop-spawned root.
	p := a.pass.Fset.Position(vr.Pos())
	key := accessKey{fmt.Sprintf("capture %s (%s:%d)", vr.Name(), filepath.Base(p.Filename), p.Line), write}
	mergeAccess(bi.access, key, accessRec{
		pos:         id.Pos(),
		perInstance: loop != nil && within(vr.Pos(), loop),
	})
}

// recordField records an access to a struct field object. The state
// key is the field's identity ((owner type, field name)), deliberately
// instance-blind: proving instances disjoint is the partitioning
// refactor's job, not this analyzer's.
func (a *analyzer) recordField(bi *bodyInfo, sel *ast.SelectorExpr, write bool, rootLit *ast.FuncLit, loop ast.Node, recv *types.Var) {
	selection := a.pass.TypesInfo.Selections[sel]
	field, ok := selection.Obj().(*types.Var)
	if !ok {
		return
	}
	owner := ownerName(selection.Recv())
	key := accessKey{fmt.Sprintf("field (%s).%s", owner, field.Name()), write}
	rec := accessRec{pos: sel.Sel.Pos()}
	if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
		vr, isVar := a.pass.TypesInfo.Uses[base].(*types.Var)
		// m.field inside a method: via the receiver, so a per-instance
		// receiver at a call site makes the access per-instance.
		rec.viaRecv = isVar && recv != nil && vr == recv
		// A depth-1 access through a per-instance captured base touches
		// that instance's own field slot.
		if isVar && !vr.IsField() && rootLit != nil && within(base.Pos(), rootLit) &&
			!(vr.Pkg() != nil && vr.Parent() == vr.Pkg().Scope()) &&
			loop != nil && within(vr.Pos(), loop) {
			rec.perInstance = true
		}
	}
	mergeAccess(bi.access, key, rec)
}

// ownerName renders the receiver type of a field selection as
// "<pkgpath>.<TypeName>".
func ownerName(t types.Type) string {
	for {
		switch x := t.(type) {
		case *types.Pointer:
			t = x.Elem()
			continue
		case *types.Named:
			obj := x.Obj()
			if obj.Pkg() != nil {
				return obj.Pkg().Path() + "." + obj.Name()
			}
			return obj.Name()
		default:
			return t.String()
		}
	}
}

// mergeAccess keeps the first position seen for a key and intersects
// the exemption flags: an access is per-instance (or via-receiver) only
// if every path to it is — one shared path makes the state shared.
func mergeAccess(m map[accessKey]accessRec, k accessKey, r accessRec) {
	prev, ok := m[k]
	if !ok {
		m[k] = r
		return
	}
	merged := accessRec{
		pos:         prev.pos,
		perInstance: prev.perInstance && r.perInstance,
		viaRecv:     prev.viaRecv && r.viaRecv,
	}
	if merged != prev {
		m[k] = merged
	}
}

func within(pos token.Pos, node ast.Node) bool {
	return node != nil && pos >= node.Pos() && pos <= node.End()
}

// isSpawn reports whether fn is Env.Go, Env.At or Env.After.
func isSpawn(fn *types.Func) bool {
	return analysis.IsSimFunc(fn, "Go", "At", "After")
}

// scanQueueElems records the element types of every sim.NewQueue
// instantiation in the package, keyed like field owners
// ("<pkgpath>.<Type>", pointers peeled).
func (a *analyzer) scanQueueElems() {
	for _, f := range a.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := callgraph.StaticCallee(a.pass.TypesInfo, call)
			if callee == nil || !analysis.IsSimFunc(callee, "NewQueue") {
				return true
			}
			t := a.pass.TypesInfo.TypeOf(call) // *sim.Queue[T]
			ptr, ok := t.(*types.Pointer)
			if !ok {
				return true
			}
			named, ok := ptr.Elem().(*types.Named)
			if !ok || named.TypeArgs().Len() != 1 {
				return true
			}
			a.queueElems[ownerName(named.TypeArgs().At(0))] = true
			return true
		})
	}
}

// queueMediated reports whether state is a field of a queue element
// type recorded by scanQueueElems.
func (a *analyzer) queueMediated(state string) bool {
	if len(a.queueElems) == 0 || !strings.HasPrefix(state, "field (") {
		return false
	}
	rest := strings.TrimPrefix(state, "field (")
	i := strings.LastIndex(rest, ").")
	if i < 0 {
		return false
	}
	return a.queueElems[rest[:i]]
}

// siteID is the module-wide identity of a spawn site.
func (a *analyzer) siteID(pos token.Pos) string {
	p := a.pass.Fset.Position(pos)
	return fmt.Sprintf("%s/%s:%d", a.pass.Pkg.Path(), filepath.Base(p.Filename), p.Line)
}

// ---- propagation ----

// propagate folds callee summaries into callers until a fixpoint:
// afterwards funcInfo.summary/spawns are transitive over same-package
// edges (cross-package edges were flattened at walk time via facts).
// Inherited accesses carry the local call-site position so diagnostics
// always point into the package under analysis.
func (a *analyzer) propagate() {
	for _, fi := range a.funcs {
		fi.summary = map[accessKey]accessRec{}
		for k, r := range fi.direct.access {
			fi.summary[k] = r
		}
		fi.spawns = map[string]token.Pos{}
		for id, pos := range fi.direct.spawns {
			fi.spawns[id] = pos
		}
	}
	for changed := true; changed; {
		changed = false
		for _, fi := range a.funcs {
			for _, e := range fi.direct.calls {
				cfi := a.funcs[e.fn]
				if cfi == nil {
					continue
				}
				// A callee access stays via-receiver only when the call
				// itself goes through this method's own receiver
				// (m.helper() inside (*T).run keeps m.field accesses
				// attached to the receiver chain).
				viaOurRecv := fi.recv != nil && e.recv == fi.recv
				for k, cr := range cfi.summary {
					nr := accessRec{pos: e.pos, viaRecv: viaOurRecv && cr.viaRecv}
					prev, ok := fi.summary[k]
					if !ok {
						fi.summary[k] = nr
						changed = true
						continue
					}
					merged := accessRec{
						pos:         prev.pos,
						perInstance: prev.perInstance && nr.perInstance,
						viaRecv:     prev.viaRecv && nr.viaRecv,
					}
					if merged != prev {
						fi.summary[k] = merged
						changed = true
					}
				}
				for id := range cfi.spawns {
					if _, ok := fi.spawns[id]; !ok {
						fi.spawns[id] = e.pos
						changed = true
					}
				}
			}
		}
	}
}

// ---- root discovery ----

// scanRoots finds every Env.Go / Env.At / Env.After call site in the
// package and assembles each root's transitive accesses.
func (a *analyzer) scanRoots() {
	for _, f := range a.pass.Files {
		var stack []ast.Node
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			call, ok := n.(*ast.CallExpr)
			if !ok || a.pass.IsTestFile(call.Pos()) {
				return true
			}
			callee := callgraph.StaticCallee(a.pass.TypesInfo, call)
			if callee == nil || !isSpawn(callee) || len(call.Args) == 0 {
				return true
			}
			a.addRoot(call, callee, innermostLoop(stack))
			return true
		})
	}
	sort.Slice(a.roots, func(i, j int) bool { return a.roots[i].id < a.roots[j].id })
}

// innermostLoop returns the nearest enclosing for/range statement that
// is still inside the spawning function (a loop in an outer function
// does not multiply this function's instances statically).
func innermostLoop(stack []ast.Node) ast.Node {
	for i := len(stack) - 2; i >= 0; i-- {
		switch n := stack[i].(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return n
		case *ast.FuncLit, *ast.FuncDecl:
			return nil
		}
	}
	return nil
}

func (a *analyzer) addRoot(call *ast.CallExpr, callee *types.Func, loop ast.Node) {
	kind, name := "callback", callee.Name()
	if callee.Name() == "Go" {
		kind = "proc"
		name = "?"
		if len(call.Args) >= 2 {
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit); ok && lit.Kind == token.STRING {
				if s, err := strconv.Unquote(lit.Value); err == nil {
					name = s
				}
			}
		}
	}
	id := a.siteID(call.Pos())
	r := &rootRec{
		id:     id,
		label:  fmt.Sprintf("%s %q (%s)", kind, name, trimModule(id)),
		plural: loop != nil,
		pos:    call.Pos(),
		access: map[accessKey]accessRec{},
		spawns: map[string]token.Pos{},
	}

	fnArg := ast.Unparen(call.Args[len(call.Args)-1])
	switch arg := fnArg.(type) {
	case *ast.FuncLit:
		bi := a.walkBody(arg.Body, arg, loop, nil)
		for k, rec := range bi.access {
			mergeAccess(r.access, k, rec)
		}
		for id, pos := range bi.spawns {
			r.spawns[id] = pos
		}
		for _, e := range bi.calls {
			a.inherit(r, e, arg, loop)
		}
	case *ast.Ident:
		if fn, ok := a.pass.TypesInfo.Uses[arg].(*types.Func); ok {
			a.inheritRootFunc(r, fn, call.Pos(), nil, nil)
		}
	case *ast.SelectorExpr:
		// Method value (env.After(d, r.ResetMeasurement)): the bound
		// receiver expression was evaluated in the spawning function;
		// the body is the method's, and a per-instance (loop-local)
		// receiver keeps its own fields out of self-pairs.
		if fn, ok := a.pass.TypesInfo.Uses[arg.Sel].(*types.Func); ok {
			var recv *types.Var
			if base, ok := ast.Unparen(arg.X).(*ast.Ident); ok {
				if v, ok := a.pass.TypesInfo.Uses[base].(*types.Var); ok && !v.IsField() {
					recv = v
				}
			}
			a.inheritRootFunc(r, fn, call.Pos(), recv, loop)
		}
	}
	a.roots = append(a.roots, r)
}

// perInstanceRecv reports whether recv is a loop-iteration-local
// variable as seen from a spawn site inside loop (each spawned instance
// binds its own copy), excluding variables declared inside the root
// literal itself.
func perInstanceRecv(recv *types.Var, rootLit *ast.FuncLit, loop ast.Node) bool {
	return recv != nil && loop != nil && within(recv.Pos(), loop) &&
		(rootLit == nil || !within(recv.Pos(), rootLit))
}

// inherit merges a same-package callee's transitive summary into a
// root, positioned at the call site. Via-receiver accesses of a method
// called on a per-instance captured receiver are per-instance.
func (a *analyzer) inherit(r *rootRec, e callEdge, rootLit *ast.FuncLit, loop ast.Node) {
	fi := a.funcs[e.fn]
	if fi == nil {
		return
	}
	perInst := perInstanceRecv(e.recv, rootLit, loop)
	for k, cr := range fi.summary {
		mergeAccess(r.access, k, accessRec{pos: e.pos, perInstance: perInst && cr.viaRecv})
	}
	for id := range fi.spawns {
		if _, ok := r.spawns[id]; !ok {
			r.spawns[id] = e.pos
		}
	}
}

// inheritRootFunc resolves a named-function or method-value root body:
// same-package summaries directly, cross-package ones via facts.
func (a *analyzer) inheritRootFunc(r *rootRec, fn *types.Func, pos token.Pos, recv *types.Var, loop ast.Node) {
	if fn.Pkg() == a.pass.Pkg {
		a.inherit(r, callEdge{fn: fn, pos: pos, recv: recv}, nil, loop)
		return
	}
	perInst := perInstanceRecv(recv, nil, loop)
	var ff FuncFact
	if a.pass.ImportObjectFact(fn, &ff) {
		for _, acc := range ff.Accesses {
			mergeAccess(r.access, accessKey{acc.State, acc.Write},
				accessRec{pos: pos, perInstance: perInst && acc.ViaRecv})
		}
		for _, id := range ff.Spawns {
			if _, ok := r.spawns[id]; !ok {
				r.spawns[id] = pos
			}
		}
	}
}

// ---- fact export ----

func (a *analyzer) exportFacts() {
	for fn, fi := range a.funcs {
		ff := &FuncFact{}
		for k, rec := range fi.summary {
			if strings.HasPrefix(k.state, "capture ") {
				continue // meaningless outside the declaring package
			}
			if a.queueMediated(k.state) {
				continue // hand-off state: mediated by the queue
			}
			ff.Accesses = append(ff.Accesses, Access{State: k.state, Write: k.write, ViaRecv: rec.viaRecv})
		}
		for id := range fi.spawns {
			ff.Spawns = append(ff.Spawns, id)
		}
		sortFact(ff)
		a.pass.ExportObjectFact(fn, ff)
	}
	if len(a.roots) == 0 {
		return
	}
	rf := &RootsFact{}
	for _, r := range a.roots {
		rs := RootSummary{ID: r.id, Label: r.label, Plural: r.plural}
		for k := range r.access {
			if strings.HasPrefix(k.state, "capture ") {
				continue
			}
			if a.queueMediated(k.state) {
				continue
			}
			rs.Accesses = append(rs.Accesses, Access{State: k.state, Write: k.write})
		}
		for id := range r.spawns {
			rs.Spawns = append(rs.Spawns, id)
		}
		sort.Slice(rs.Accesses, func(i, j int) bool {
			x, y := rs.Accesses[i], rs.Accesses[j]
			if x.State != y.State {
				return x.State < y.State
			}
			return !x.Write && y.Write
		})
		sort.Strings(rs.Spawns)
		rf.Roots = append(rf.Roots, rs)
	}
	a.pass.ExportPackageFact(rf)
}

func sortFact(ff *FuncFact) {
	sort.Slice(ff.Accesses, func(i, j int) bool {
		x, y := ff.Accesses[i], ff.Accesses[j]
		if x.State != y.State {
			return x.State < y.State
		}
		return !x.Write && y.Write
	})
	sort.Strings(ff.Spawns)
}

// ---- pairing and reporting ----

// knownRoot is the pairing-time view of a root, local or imported.
type knownRoot struct {
	id, label string
	plural    bool
	local     *rootRec // nil for roots imported from dependency packages
	spawns    []string
	reads     map[string]bool
	writes    map[string]bool
	// selfReads/selfWrites exclude per-instance accesses (self-pairing
	// only; always equal to reads/writes for imported roots, which are
	// never self-paired here — their own package already did).
	selfReads, selfWrites map[string]bool
}

func (a *analyzer) report() {
	known := map[string]*knownRoot{}
	for _, r := range a.roots {
		kr := &knownRoot{
			id: r.id, label: r.label, plural: r.plural, local: r,
			reads: map[string]bool{}, writes: map[string]bool{},
			selfReads: map[string]bool{}, selfWrites: map[string]bool{},
		}
		for id := range r.spawns {
			kr.spawns = append(kr.spawns, id)
		}
		sort.Strings(kr.spawns)
		for k, rec := range r.access {
			set(kr.reads, kr.writes, k)
			if !rec.perInstance {
				set(kr.selfReads, kr.selfWrites, k)
			}
		}
		known[r.id] = kr
	}
	for _, pf := range a.pass.AllPackageFacts() {
		rf, ok := pf.Fact.(*RootsFact)
		if !ok || pf.Pkg == a.pass.Pkg {
			continue // own roots are already present with local detail
		}
		for _, rs := range rf.Roots {
			kr := &knownRoot{
				id: rs.ID, label: rs.Label, plural: rs.Plural, spawns: rs.Spawns,
				reads: map[string]bool{}, writes: map[string]bool{},
			}
			for _, acc := range rs.Accesses {
				set(kr.reads, kr.writes, accessKey{acc.State, acc.Write})
			}
			kr.selfReads, kr.selfWrites = kr.reads, kr.writes
			known[rs.ID] = kr
		}
	}

	// Co-spawn groups: the spawn closure of every declared function and
	// of every local root. Two roots in one group can coexist in one
	// Env.
	type group struct {
		ids []string
		pos token.Pos
	}
	var groups []group
	for fn, fi := range a.funcs {
		if len(fi.spawns) == 0 {
			continue
		}
		seed := make([]string, 0, len(fi.spawns))
		for id := range fi.spawns {
			seed = append(seed, id)
		}
		groups = append(groups, group{ids: a.closure(seed, known), pos: fn.Pos()})
	}
	for _, r := range a.roots {
		seed := []string{r.id}
		for id := range r.spawns {
			seed = append(seed, id)
		}
		groups = append(groups, group{ids: a.closure(seed, known), pos: r.pos})
	}

	type pairKey struct{ a, b string }
	pairs := map[pairKey]token.Pos{}
	for _, g := range groups {
		for i := 0; i < len(g.ids); i++ {
			for j := i; j < len(g.ids); j++ {
				x, y := g.ids[i], g.ids[j]
				if x > y {
					x, y = y, x
				}
				pk := pairKey{x, y}
				if _, ok := pairs[pk]; !ok {
					pairs[pk] = g.pos
				}
			}
		}
	}

	var keys []pairKey
	for pk := range pairs {
		keys = append(keys, pk)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].a != keys[j].a {
			return keys[i].a < keys[j].a
		}
		return keys[i].b < keys[j].b
	})

	reported := map[string]bool{}
	for _, pk := range keys {
		ra, rb := known[pk.a], known[pk.b]
		if ra == nil || rb == nil {
			continue
		}
		if ra.local == nil && rb.local == nil {
			// Both roots live in other packages: the package whose
			// spawner co-spawns them reports the pair with real
			// positions (core reports master×injector-callback, not
			// every main package that calls Router.Start).
			continue
		}
		if pk.a == pk.b {
			a.reportSelf(ra, reported)
			continue
		}
		a.reportPair(ra, rb, pairs[pk], reported)
	}
}

func set(reads, writes map[string]bool, k accessKey) {
	if k.write {
		writes[k.state] = true
	} else {
		reads[k.state] = true
	}
}

// closure expands a set of root IDs over the roots-spawn-roots
// relation.
func (a *analyzer) closure(seed []string, known map[string]*knownRoot) []string {
	in := map[string]bool{}
	work := append([]string(nil), seed...)
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		if in[id] {
			continue
		}
		in[id] = true
		if kr := known[id]; kr != nil {
			work = append(work, kr.spawns...)
		}
	}
	out := make([]string, 0, len(in))
	for id := range in {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

const adviceSuffix = "; unmediated cross-proc shared state blocks partitioning (mediate via sim.Queue/sim.Server, make it read-only after construction, or waive it with a reason in pslint-baseline.json)"

// reportSelf flags state a loop-spawned root's instances share with
// each other.
func (a *analyzer) reportSelf(r *knownRoot, reported map[string]bool) {
	if r.local == nil || !r.plural {
		return
	}
	var states []string
	for s := range r.selfWrites {
		if a.queueMediated(s) {
			continue
		}
		states = append(states, s)
	}
	sort.Strings(states)
	for _, s := range states {
		key := r.id + "|" + r.id + "|" + s
		if reported[key] {
			continue
		}
		reported[key] = true
		pos := a.accessPos(r, s, r.local.pos)
		a.pass.Reportf(pos, "%s runs as multiple instances that all write %s%s",
			r.label, display(s), adviceSuffix)
	}
}

// reportPair flags state written by one root and touched by the other.
func (a *analyzer) reportPair(ra, rb *knownRoot, origin token.Pos, reported map[string]bool) {
	states := map[string]bool{}
	for s := range ra.writes {
		if rb.writes[s] || rb.reads[s] {
			states[s] = true
		}
	}
	for s := range rb.writes {
		if ra.writes[s] || ra.reads[s] {
			states[s] = true
		}
	}
	for s := range states {
		if a.queueMediated(s) {
			delete(states, s)
		}
	}
	var sorted []string
	for s := range states {
		sorted = append(sorted, s)
	}
	sort.Strings(sorted)
	for _, s := range sorted {
		key := ra.id + "|" + rb.id + "|" + s
		if reported[key] {
			continue
		}
		reported[key] = true
		w, o := ra, rb
		if !w.writes[s] {
			w, o = rb, ra
		}
		verb := "read"
		if o.writes[s] {
			verb = "written"
		}
		// Anchor the diagnostic in this package: at the writer's access
		// when local, else at the other root's.
		pos := origin
		if w.local != nil {
			pos = a.accessPos(w, s, origin)
		} else if o.local != nil {
			pos = a.accessPos(o, s, origin)
		}
		a.pass.Reportf(pos, "%s is written by %s and %s by %s%s",
			display(s), w.label, verb, o.label, adviceSuffix)
	}
}

// accessPos finds a local position for one of r's accesses to state s,
// preferring the write.
func (a *analyzer) accessPos(r *knownRoot, s string, fallback token.Pos) token.Pos {
	if r.local == nil {
		return fallback
	}
	if rec, ok := r.local.access[accessKey{s, true}]; ok {
		return rec.pos
	}
	if rec, ok := r.local.access[accessKey{s, false}]; ok {
		return rec.pos
	}
	return fallback
}

// display trims the module prefix from a state key for readability.
func display(s string) string {
	return strings.ReplaceAll(s, "packetshader/internal/", "")
}

// trimModule shortens a root ID for display.
func trimModule(id string) string {
	return strings.TrimPrefix(id, "packetshader/")
}
