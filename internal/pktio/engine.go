// Package pktio implements PacketShader's optimized packet I/O engine
// (§4): huge packet buffers with compact metadata, aggressive batching,
// software prefetch, multiqueue-aware user-level interfaces (Figure 8b),
// per-queue statistics, and NUMA-aware placement. The legacy Linux skb
// path is implemented alongside for the Table 3 breakdown and the
// batching ablations.
//
// CPU costs are charged in virtual time from the calibrated constants in
// internal/model; the functional work (buffer management, copies) really
// happens so the rest of the router operates on real frames.
package pktio

import (
	"strconv"

	"packetshader/internal/hw/nic"
	"packetshader/internal/hw/pcie"
	"packetshader/internal/mem"
	"packetshader/internal/model"
	"packetshader/internal/obs"
	"packetshader/internal/packet"
	"packetshader/internal/sim"
)

// BufferMode selects the packet-buffer allocation scheme.
type BufferMode int

// Buffer modes.
const (
	// ModeHuge is the huge packet buffer of §4.2 (the PacketShader
	// engine).
	ModeHuge BufferMode = iota
	// ModeSkb is the legacy per-packet skb allocation path of §4.1.
	ModeSkb
)

// Config describes the engine topology and the optimization knobs the
// paper evaluates.
type Config struct {
	Nodes         int // NUMA nodes (2 in the testbed)
	Ports         int // 10GbE ports (8)
	QueuesPerPort int // RSS RX queues per port
	RingSize      int // descriptors per RX queue
	BatchCap      int // max packets fetched per batch (Figure 5 sweep)

	Mode BufferMode

	// NUMAAware places DMA and data structures on the packets' node
	// (§4.5); when false, half the traffic crosses nodes.
	NUMAAware bool
	// AlignQueueData pads per-queue state to cache lines; when false the
	// false-sharing penalty of §4.4 applies.
	AlignQueueData bool
	// PerQueueCounters keeps statistics per queue; when false every
	// packet pays a coherence miss on shared per-NIC counters (§4.4).
	PerQueueCounters bool
	// Prefetch enables the software prefetch of §4.3 that hides the
	// compulsory cache misses of DMA-invalidated buffers.
	Prefetch bool
}

// DefaultConfig is the full PacketShader engine on the paper's testbed.
func DefaultConfig() Config {
	return Config{
		Nodes:            model.NumNodes,
		Ports:            model.NumPorts,
		QueuesPerPort:    model.CoresPerNode - 1, // workers per node (§5.1)
		RingSize:         model.RxRingSize,
		BatchCap:         model.MaxChunkSize,
		Mode:             ModeHuge,
		NUMAAware:        true,
		AlignQueueData:   true,
		PerQueueCounters: true,
		Prefetch:         true,
	}
}

// Port is one 10GbE port: its RSS RX queues and TX side.
type Port struct {
	ID   int
	Node int
	Rx   []*nic.RxQueue
	Tx   *nic.TxPort
}

// Engine is the packet I/O engine instance for the whole machine.
type Engine struct {
	Env   *sim.Env
	Cfg   Config
	IOHs  []*pcie.IOH
	Ports []*Port
	Pool  *packet.BufPool

	// skb is the legacy allocator (ModeSkb), created lazily on first
	// use: ModeHuge engines never pay its 16MB arena. In ModeHuge the
	// Pool plays the huge-buffer role: fixed 2048-byte cells recycled
	// without per-packet allocation.
	skb *mem.SkbAllocator

	// breakdown accumulates RX cycles per functional bin (Table 3).
	breakdown Breakdown

	// statNames holds the per-port counter names, built once at New:
	// ObserveStats runs on every metrics snapshot and must not rebuild
	// the same strings each time.
	statNames []portStatNames
}

// portStatNames is the precomputed set of per-port counter names.
type portStatNames struct {
	rxPackets, rxDropped, txPackets, txDropped string
}

// Breakdown is the Table 3 cycle accounting.
type Breakdown struct {
	SkbInit      float64
	SkbAlloc     float64
	MemSubsystem float64
	Driver       float64
	Others       float64
	CacheMisses  float64
}

// Total sums all bins.
func (b *Breakdown) Total() float64 {
	return b.SkbInit + b.SkbAlloc + b.MemSubsystem + b.Driver + b.Others + b.CacheMisses
}

// New builds the engine and its port topology: ports are split evenly
// across nodes (Figure 3: two dual-port NICs per IOH).
func New(env *sim.Env, cfg Config) *Engine {
	e := &Engine{
		Env:  env,
		Cfg:  cfg,
		Pool: packet.NewBufPool(model.HugeCellDataBytes),
	}
	for n := 0; n < cfg.Nodes; n++ {
		e.IOHs = append(e.IOHs, pcie.NewIOH(env, n))
	}
	portsPerNode := cfg.Ports / cfg.Nodes
	if portsPerNode == 0 {
		portsPerNode = cfg.Ports
	}
	for i := 0; i < cfg.Ports; i++ {
		node := i / portsPerNode
		if node >= cfg.Nodes {
			node = cfg.Nodes - 1
		}
		p := &Port{ID: i, Node: node}
		path := []*pcie.IOH{e.IOHs[node]}
		for q := 0; q < cfg.QueuesPerPort; q++ {
			rq := nic.NewRxQueue(env, i, q, cfg.RingSize, e.Pool, path)
			p.Rx = append(p.Rx, rq)
		}
		p.Tx = nic.NewTxPort(env, i, model.TxRingSize, path)
		e.Ports = append(e.Ports, p)
		id := strconv.Itoa(i)
		e.statNames = append(e.statNames, portStatNames{
			rxPackets: "pktio.port" + id + ".rx_packets",
			rxDropped: "pktio.port" + id + ".rx_dropped",
			txPackets: "pktio.port" + id + ".tx_packets",
			txDropped: "pktio.port" + id + ".tx_dropped",
		})
	}
	return e
}

// Iface is a user-level virtual interface bound to one (NIC, RX queue)
// pair (Figure 8b): exactly one worker owns it, so no lock contention.
type Iface struct {
	Engine *Engine
	Port   *Port
	Queue  *nic.RxQueue
	// WorkerNode is the NUMA node of the owning worker; node-crossing
	// access applies the §4.5 penalties.
	WorkerNode int

	// rxCycles memoizes perPacketRxCycles by size for ModeHuge: the cost
	// is a pure function of (size, config, remoteness), all fixed at open
	// time. Each entry is produced by the original op sequence, so the
	// charged cycles are bit-identical to computing them per packet.
	// ModeSkb stays on the slow path (it performs real allocator work and
	// breakdown accounting per packet).
	rxCycles []float64
	// batchRxCycles is the hoisted per-batch constant of FetchChunk.
	batchRxCycles float64
	// missPerPacket mirrors the !Prefetch breakdown accounting the memo
	// table can no longer do inline.
	missPerPacket bool
}

// OpenIface binds (port, queue) for a worker on workerNode. With
// NUMA-blind placement the RX DMA is routed across both hubs.
func (e *Engine) OpenIface(port, queue, workerNode int) *Iface {
	p := e.Ports[port]
	q := p.Rx[queue]
	if workerNode != p.Node && len(e.IOHs) > 1 {
		// Node-crossing DMA traverses both IOHs (§4.5).
		q.SetDMAPath([]*pcie.IOH{e.IOHs[0], e.IOHs[1]})
	}
	f := &Iface{Engine: e, Port: p, Queue: q, WorkerNode: workerNode}
	f.batchRxCycles = model.IOBatchCycles * model.IORxShare * f.remoteFactor()
	if e.Cfg.Mode == ModeHuge {
		f.missPerPacket = !e.Cfg.Prefetch
		f.rxCycles = make([]float64, model.HugeCellDataBytes+1)
		for size := range f.rxCycles {
			f.rxCycles[size] = f.hugeRxCycles(size)
		}
	}
	return f
}

// remoteFactor is the memory-cost multiplier for node-crossing work.
func (f *Iface) remoteFactor() float64 {
	if f.WorkerNode != f.Port.Node {
		return model.RemoteMemFactor
	}
	return 1
}

// hugeRxCycles is the ModeHuge per-packet cost as a pure function of
// size (no breakdown side effects): the reference op sequence the
// rxCycles memo table is built from.
func (f *Iface) hugeRxCycles(size int) float64 {
	e := f.Engine
	c := model.IOPerPacketCycles * model.IORxShare
	if size > 64 {
		// The copy into the user chunk grows with packet size; the
		// 64B copy is inside the calibrated base.
		c += float64(size-64) * model.CopyCyclesPerByte
	}
	if !e.Cfg.Prefetch {
		c += model.CompulsoryMissCycles
	}
	if !e.Cfg.AlignQueueData {
		c += model.FalseSharingPenaltyCycles
	}
	if !e.Cfg.PerQueueCounters {
		c += model.SharedCounterPenaltyCycles
	}
	return c * f.remoteFactor()
}

// perPacketRxCycles computes the CPU cost of receiving one packet of
// size bytes on this interface under the engine's configuration.
func (f *Iface) perPacketRxCycles(size int) float64 {
	e := f.Engine
	var c float64
	switch e.Cfg.Mode {
	case ModeHuge:
		if !e.Cfg.Prefetch {
			e.breakdown.CacheMisses += model.CompulsoryMissCycles
		}
		return f.hugeRxCycles(size)
	case ModeSkb:
		// The full Table 3 stack, really performing the allocations.
		if e.skb == nil {
			e.skb = mem.NewSkbAllocator(mem.NewArena(4096))
		}
		if skb, err := e.skb.Alloc(size); err == nil {
			e.skb.Free(skb)
		}
		c = model.SkbInitCycles + model.SkbAllocWrapperCycles +
			4*model.SlabOpCycles + model.SkbDriverCycles +
			model.SkbOtherCycles + model.CompulsoryMissCycles
		e.breakdown.SkbInit += model.SkbInitCycles
		e.breakdown.SkbAlloc += model.SkbAllocWrapperCycles
		e.breakdown.MemSubsystem += 4 * model.SlabOpCycles
		e.breakdown.Driver += model.SkbDriverCycles
		e.breakdown.Others += model.SkbOtherCycles
		e.breakdown.CacheMisses += model.CompulsoryMissCycles
	}
	if !e.Cfg.AlignQueueData {
		c += model.FalseSharingPenaltyCycles
	}
	if !e.Cfg.PerQueueCounters {
		c += model.SharedCounterPenaltyCycles
	}
	return c * f.remoteFactor()
}

// FetchChunk fetches up to max packets from the interface, charging the
// worker's CPU time for the batch and per-packet RX costs. Returns nil
// when the queue is empty.
func (f *Iface) FetchChunk(p *sim.Proc, max int, out []*packet.Buf) []*packet.Buf {
	if max > f.Engine.Cfg.BatchCap {
		max = f.Engine.Cfg.BatchCap
	}
	got := f.Queue.Fetch(p, max, out)
	n := len(got) - len(out)
	if n <= 0 {
		return nil
	}
	cycles := f.batchRxCycles
	if f.rxCycles != nil {
		for _, b := range got[len(out):] {
			size := b.Size()
			if size >= len(f.rxCycles) {
				size = len(f.rxCycles) - 1
			}
			cycles += f.rxCycles[size]
			if f.missPerPacket {
				f.Engine.breakdown.CacheMisses += model.CompulsoryMissCycles
			}
		}
	} else {
		for _, b := range got[len(out):] {
			cycles += f.perPacketRxCycles(b.Size())
		}
	}
	p.Sleep(model.Cycles(cycles))
	return got
}

// Wait blocks until the interface has packets, in the
// interrupt-then-poll style of §5.2. Returns false if the queue has no
// offered load.
func (f *Iface) Wait(p *sim.Proc) bool {
	return f.Queue.WaitForPackets(p)
}

// Send transmits bufs on the engine's port tx, charging the worker the
// TX half of the batch and per-packet costs.
func (e *Engine) Send(p *sim.Proc, workerNode, port int, bufs []*packet.Buf) {
	if len(bufs) == 0 {
		return
	}
	tgt := e.Ports[port]
	factor := 1.0
	if workerNode != tgt.Node {
		// §5.1: forwarding to ports in the other node is done by DMA,
		// not CPU — but descriptor writes still touch remote memory.
		factor = model.RemoteMemFactor
	}
	cycles := model.IOBatchCycles * model.IOTxShare * factor
	cycles += float64(len(bufs)) * model.IOPerPacketCycles * model.IOTxShare * factor
	if !e.Cfg.PerQueueCounters {
		cycles += float64(len(bufs)) * model.SharedCounterPenaltyCycles
	}
	p.Sleep(model.Cycles(cycles))
	tgt.Tx.TransmitBlocking(p, bufs)
}

// RxBreakdown returns the accumulated Table 3 accounting.
func (e *Engine) RxBreakdown() Breakdown { return e.breakdown }

// ObserveStats snapshots the engine's per-queue counters into reg
// (aggregate and per-port), the same on-demand aggregation style as
// AggregateStats. Ports iterate in slice order, so counter creation
// order — and therefore the metrics dump — is deterministic.
func (e *Engine) ObserveStats(reg *obs.Registry) {
	if reg == nil {
		return
	}
	var rx, rxBytes, rxDropped, tx, txBytes, txDropped, txCarrier uint64
	for _, p := range e.Ports {
		var prx, prxd uint64
		for _, q := range p.Rx {
			prx += q.Stats.Packets
			rxBytes += q.Stats.Bytes
			prxd += q.Stats.Dropped
		}
		rx += prx
		rxDropped += prxd
		tx += p.Tx.Stats.Packets
		txBytes += p.Tx.Stats.Bytes
		txDropped += p.Tx.Stats.Dropped
		txCarrier += p.Tx.CarrierDrops
		names := &e.statNames[p.ID]
		reg.Counter(names.rxPackets).Set(prx)
		reg.Counter(names.rxDropped).Set(prxd)
		reg.Counter(names.txPackets).Set(p.Tx.Stats.Packets)
		reg.Counter(names.txDropped).Set(p.Tx.Stats.Dropped)
	}
	reg.Counter("pktio.rx_packets").Set(rx)
	reg.Counter("pktio.rx_bytes").Set(rxBytes)
	reg.Counter("pktio.rx_dropped").Set(rxDropped)
	reg.Counter("pktio.tx_packets").Set(tx)
	reg.Counter("pktio.tx_bytes").Set(txBytes)
	reg.Counter("pktio.tx_dropped").Set(txDropped)
	reg.Counter("pktio.tx_carrier_drops").Set(txCarrier)
}

// AggregateStats sums per-queue counters on demand, the way the §4.4
// design computes per-NIC statistics only when ifconfig asks.
func (e *Engine) AggregateStats() (rx, rxDropped, tx, txDropped uint64) {
	for _, p := range e.Ports {
		for _, q := range p.Rx {
			rx += q.Stats.Packets
			rxDropped += q.Stats.Dropped
		}
		tx += p.Tx.Stats.Packets
		txDropped += p.Tx.Stats.Dropped
	}
	return
}

// DeliveredWire returns total delivered TX wire time across all ports.
func (e *Engine) DeliveredWire() float64 {
	var wire float64
	for _, p := range e.Ports {
		wire += p.Tx.Delivered().Seconds()
	}
	return wire
}

// DeliveredGbps returns the aggregate delivered TX throughput in the
// paper's wire-Gbps metric over the elapsed window.
func (e *Engine) DeliveredGbps(since sim.Time) float64 {
	elapsed := sim.Duration(e.Env.Now() - since).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return e.DeliveredWire() / elapsed * model.PortRateBps / 1e9
}
