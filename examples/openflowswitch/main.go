// openflowswitch: an OpenFlow 0.8.9 switch scenario — flows are
// installed into the exact-match table as "the controller" sees misses,
// then the switch data path runs at full load with GPU-offloaded hash
// computation and wildcard matching (§6.2.3).
package main

import (
	"fmt"

	"packetshader"
	"packetshader/internal/openflow"
	"packetshader/internal/packet"
)

// flowSource emits traffic from a bounded flow space so exact-match
// entries can be pre-installed (mirroring a learned switch).
type flowSource struct {
	flows int
	size  int
}

func (s *flowSource) tuple(port, idx int) (src, dst packet.IPv4Addr, sp, dp uint16) {
	h := uint64(port)<<32 | uint64(idx)
	h = (h ^ h>>30) * 0xbf58476d1ce4e5b9
	h ^= h >> 27
	return packet.IPv4Addr(0x0A000000 | uint32(h&0xffffff)),
		packet.IPv4Addr(0x0B000000 | uint32(h>>24&0xffffff)),
		uint16(h>>40) | 1024, uint16(idx) | 1024
}

func (s *flowSource) Fill(b *packet.Buf, port, queue int, seq uint64) {
	idx := int((seq*2654435761 + uint64(queue)) % uint64(s.flows))
	src, dst, sp, dp := s.tuple(port, idx)
	b.Data = packet.BuildUDP4(b.Data[:cap(b.Data)], s.size,
		packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
		src, dst, sp, dp)
}

func main() {
	const flowsPerPort = 4096
	src := &flowSource{flows: flowsPerPort, size: 64}

	// "Controller": install an exact entry for every flow of the space,
	// plus a low-priority wildcard rule punting unknown UDP to port 0.
	sw := openflow.NewSwitch(8 * flowsPerPort)
	var d packet.Decoder
	buf := make([]byte, 2048)
	for port := 0; port < 8; port++ {
		for idx := 0; idx < flowsPerPort; idx++ {
			s, dst, sp, dp := src.tuple(port, idx)
			frame := packet.BuildUDP4(buf, 64,
				packet.MAC{2, 0, 0, 0, 0, 1}, packet.MAC{2, 0, 0, 0, 0, 2},
				s, dst, sp, dp)
			if err := d.Decode(frame); err != nil {
				panic(err)
			}
			key := openflow.ExtractKey(&d, uint16(port))
			sw.Exact.Insert(key, openflow.Action{
				Type: openflow.ActionOutput, Port: uint16(idx % 8)})
		}
	}
	sw.Wildcard.Insert(openflow.Rule{
		Wild: openflow.WAll &^ openflow.WNwProto, Priority: 1,
		Key:    openflow.FlowKey{NwProto: packet.ProtoUDP},
		Action: openflow.Action{Type: openflow.ActionOutput, Port: 0},
	})
	fmt.Printf("installed %d exact-match flows + %d wildcard rule(s)\n",
		sw.Exact.Len(), sw.Wildcard.Len())

	for _, mode := range []struct {
		name string
		m    packetshader.Mode
	}{{"CPU-only", packetshader.ModeCPUOnly}, {"CPU+GPU ", packetshader.ModeGPU}} {
		inst := packetshader.Must(packetshader.OpenFlowSwitch(sw, src,
			packetshader.WithMode(mode.m),
			packetshader.WithPacketSize(64)))
		inst.Run(6 * packetshader.Millisecond) // warmup
		rep := inst.Run(8 * packetshader.Millisecond)
		fmt.Printf("%s  %5.1f Gbps  (table misses so far: %d)\n",
			mode.name, rep.DeliveredGbps, sw.Misses)
	}
	fmt.Println("\npaper (Figure 11c): GPU beats CPU for every table size; 32 Gbps at 32K+32")
}
