package procshare_test

import (
	"testing"

	"packetshader/internal/analysis/analysistest"
	"packetshader/internal/analysis/procshare"
)

func TestProcshare(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), procshare.Analyzer, "procshare")
}

// TestProcshareCrossPackage exercises the facts path: the fixture
// imports fixture/procsharedep, whose FuncFact and RootsFact are
// exported by the dependency's pass and imported by the fixture's.
func TestProcshareCrossPackage(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), procshare.Analyzer, "procshare_xpkg")
}
