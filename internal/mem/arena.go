// Package mem implements the two packet-buffer allocation schemes the
// paper compares (§4.1-4.2): the Linux-style path — a Bonwick slab
// allocator over a page arena, allocating an skb metadata object plus a
// data buffer for every packet — and PacketShader's huge packet buffer,
// two big preallocated arrays of fixed cells recycled with the RX ring.
// Operation counts are exposed so the Table 3 experiment can charge
// modelled cycles per allocator operation.
package mem

import "errors"

// PageSize matches the x86 page the kernel page allocator hands out.
const PageSize = 4096

// ErrOutOfMemory is returned when the arena is exhausted.
var ErrOutOfMemory = errors.New("mem: arena exhausted")

// Arena is a fixed-capacity page allocator (the "underlying page
// allocator" of Table 3's memory-subsystem bin).
type Arena struct {
	backing []byte
	free    []int32 // LIFO freelist of page indexes
	nPages  int

	// Ops counts page alloc+free operations.
	Ops uint64
}

// NewArena creates an arena of n pages.
func NewArena(n int) *Arena {
	a := &Arena{
		backing: make([]byte, n*PageSize),
		free:    make([]int32, n),
		nPages:  n,
	}
	for i := range a.free {
		// LIFO: lowest page on top, matching kernel cache-warm reuse.
		a.free[i] = int32(n - 1 - i)
	}
	return a
}

// AllocPage returns one page, or ErrOutOfMemory.
func (a *Arena) AllocPage() ([]byte, int32, error) {
	if len(a.free) == 0 {
		return nil, -1, ErrOutOfMemory
	}
	idx := a.free[len(a.free)-1]
	a.free = a.free[:len(a.free)-1]
	a.Ops++
	off := int(idx) * PageSize
	return a.backing[off : off+PageSize : off+PageSize], idx, nil
}

// FreePage returns page idx to the freelist.
func (a *Arena) FreePage(idx int32) {
	a.Ops++
	a.free = append(a.free, idx)
}

// FreePages returns the number of available pages.
func (a *Arena) FreePages() int { return len(a.free) }

// TotalPages returns the arena capacity.
func (a *Arena) TotalPages() int { return a.nPages }
