package sharedfixture_test

import (
	"testing"

	"packetshader/internal/analysis/analysistest"
	"packetshader/internal/analysis/sharedfixture"
)

func TestSharedFixture(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), sharedfixture.Analyzer, "sharedfixture")
}
