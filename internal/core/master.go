package core

import (
	"packetshader/internal/hw/gpu"
	"packetshader/internal/model"
	"packetshader/internal/obs"
	"packetshader/internal/sim"
)

// master is the per-node GPU proxy thread (§5.1): workers never touch
// the device; the master gathers their chunks, drives the GPU, and
// scatters results back. The master deliberately does not read the
// chunk payloads (§5.3: avoiding cache migration) — it only initiates
// DMA, which the gpu.Device models.
type master struct {
	router *Router
	node   int
	dev    *gpu.Device
	inQ    *sim.Queue[*Chunk]
}

func (m *master) run(p *sim.Proc) {
	r := m.router
	o := r.obs
	track := o.masterTracks[m.node]
	for {
		first := m.inQ.Get(p)
		chunks := []*Chunk{first}
		if r.Cfg.GatherMax > 1 {
			// Gather (§5.4): take whatever else is already queued.
			chunks = append(chunks, m.inQ.DrainUpTo(r.Cfg.GatherMax-1)...)
		}
		gathered := p.Now()
		var threads, inB, outB, strB int
		for _, c := range chunks {
			o.gpuWait.ObserveDuration(sim.Duration(gathered - c.enqueued))
			threads += c.Threads
			inB += c.InBytes
			outB += c.OutBytes
			strB += c.StreamBytes
		}
		o.launchThreads.Observe(int64(threads))
		fn := func() {
			for _, c := range chunks {
				r.App.RunKernel(c)
			}
		}
		spec := r.App.Kernel()
		if r.Cfg.Streams > 1 {
			m.dev.LaunchStreams(p, spec, r.Cfg.Streams, threads, inB, outB, strB, fn)
		} else {
			m.dev.Launch(p, spec, threads, inB, outB, strB, fn)
		}
		o.tr.SpanUntil(track, "gpu-launch", gathered, p.Now(),
			obs.Arg{Key: "threads", Val: int64(threads)},
			obs.Arg{Key: "chunks", Val: int64(len(chunks))})
		r.Stats.GPULaunches++
		r.Stats.ChunksGPU += uint64(len(chunks))
		// Scatter (§5.4): results go to each chunk's own worker output
		// queue, avoiding 1-to-N sharing.
		for _, c := range chunks {
			m.router.workers[c.Worker].outQ.Put(p, c)
		}
	}
}

func simCycles(c float64) sim.Duration { return model.Cycles(c) }
