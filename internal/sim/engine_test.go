package sim

import "testing"

// TestSameInstantWakeupFIFO: processes whose wakeups land on the same
// instant run in the order the wakeups were scheduled (seq order), for
// both heap-resident events (scheduled in the past) and immediate events.
func TestSameInstantWakeupFIFO(t *testing.T) {
	env := NewEnv()
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		env.Go("p", func(p *Proc) {
			p.Sleep(10 * Nanosecond) // all wakeups collide at t=10ns
			order = append(order, i)
		})
	}
	env.Run(0)
	if len(order) != 8 {
		t.Fatalf("ran %d procs, want 8", len(order))
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("wake order %v, want 0..7 (FIFO by schedule order)", order)
		}
	}
}

// TestSameInstantImmediateFIFO covers the immediate-ring path: wakeups
// scheduled *at* the current instant (signal fire) run in FIFO order
// after all events that were already in the heap for that instant.
func TestSameInstantImmediateFIFO(t *testing.T) {
	env := NewEnv()
	sig := NewSignal(env)
	var order []string
	for i := 0; i < 4; i++ {
		name := string(rune('a' + i))
		env.Go(name, func(p *Proc) {
			sig.Wait(p)
			order = append(order, name)
		})
	}
	env.Go("firer", func(p *Proc) {
		p.Sleep(5 * Nanosecond)
		sig.Fire() // schedules 4 immediate wakeups at t=5ns
	})
	env.Run(0)
	want := []string{"a", "b", "c", "d"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestDrainUpToWakesAtMostN: draining n items must release at most n
// blocked putters; the rest stay parked.
func TestDrainUpToWakesAtMostN(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, 2)
	var completed []int
	for i := 0; i < 5; i++ {
		i := i
		env.Go("putter", func(p *Proc) {
			q.Put(p, i)
			completed = append(completed, i)
		})
	}
	var drained []int
	env.At(Time(10*Nanosecond), func() {
		drained = q.DrainUpTo(2)
	})
	env.Run(0)
	// Putters 0 and 1 fill the queue without blocking; the drain of two
	// items wakes putters 2 and 3 (FIFO); putter 4 must still be parked.
	if len(drained) != 2 || drained[0] != 0 || drained[1] != 1 {
		t.Fatalf("drained %v, want [0 1]", drained)
	}
	if len(completed) != 4 {
		t.Fatalf("%d putters completed (%v), want 4: drain of 2 must wake at most 2",
			len(completed), completed)
	}
	if q.putters.Len() != 1 {
		t.Fatalf("%d putters still parked, want 1", q.putters.Len())
	}
}

// TestTryOpsFromSchedulerContext: TryPut and TryGet never block, so they
// are callable from At/After callbacks (scheduler context), and a TryPut
// there still wakes a blocked getter.
func TestTryOpsFromSchedulerContext(t *testing.T) {
	env := NewEnv()
	q := NewQueue[int](env, 0)
	var got int
	env.Go("getter", func(p *Proc) {
		got = q.Get(p) // blocks until the callback's TryPut
	})
	env.At(Time(5*Nanosecond), func() {
		if !q.TryPut(42) {
			t.Error("TryPut failed on an unbounded queue")
		}
	})
	var polled, ok = 0, false
	env.At(Time(10*Nanosecond), func() {
		q.TryPut(7)
		polled, ok = q.TryGet()
	})
	env.Run(0)
	if got != 42 {
		t.Errorf("getter received %d, want 42 (woken by scheduler-context TryPut)", got)
	}
	if !ok || polled != 7 {
		t.Errorf("TryGet from callback = %d,%v, want 7,true", polled, ok)
	}
}

// TestNegativeSleepStillYields: a Sleep with a negative (or zero)
// duration must not let the process run straight through — it yields,
// giving already-scheduled same-instant events their turn first.
func TestNegativeSleepStillYields(t *testing.T) {
	env := NewEnv()
	var order []string
	env.Go("p1", func(p *Proc) {
		order = append(order, "p1-before")
		p.Sleep(-5 * Nanosecond)
		order = append(order, "p1-after")
	})
	env.Go("p2", func(p *Proc) {
		order = append(order, "p2")
	})
	env.Run(0)
	want := []string{"p1-before", "p2", "p1-after"}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v: negative Sleep must yield", order, want)
		}
	}
	if env.Now() != 0 {
		t.Errorf("clock at %v after negative sleep, want 0 (clamped)", env.Now())
	}
}

// TestDrainedQueueDoesNotGrowBacking: an unbounded queue cycled through
// put/get bursts must reach a steady-state ring size, not grow its
// backing array with every burst (the old shift-by-reslice
// representation reallocated continuously).
func TestDrainedQueueDoesNotGrowBacking(t *testing.T) {
	env := NewEnv()
	q := NewQueue[*int](env, 0)
	env.Go("churn", func(p *Proc) {
		v := 1
		for i := 0; i < 1000; i++ {
			for j := 0; j < 3; j++ {
				q.Put(p, &v)
			}
			for j := 0; j < 3; j++ {
				q.Get(p)
			}
			p.Sleep(Nanosecond)
		}
	})
	env.Run(0)
	if c := q.items.Cap(); c > 8 {
		t.Errorf("ring capacity %d after 1000 bursts of 3, want <= 8", c)
	}
	if q.items.Len() != 0 {
		t.Fatalf("queue not drained: %d items", q.items.Len())
	}
}

// TestRingClearsVacatedSlots: PopFront must zero the vacated slot so a
// drained ring of pointers retains nothing (the old slice queue kept the
// head reference alive in the backing array).
func TestRingClearsVacatedSlots(t *testing.T) {
	var r Ring[*int]
	for i := 0; i < 20; i++ {
		v := i
		r.PushBack(&v)
	}
	for i := 0; i < 5; i++ {
		if p := r.PopFront(); *p != i {
			t.Fatalf("PopFront = %d, want %d", *p, i)
		}
	}
	live := 0
	for i := 0; i < len(r.buf); i++ {
		if r.buf[i] != nil {
			live++
		}
	}
	if live != r.Len() {
		t.Errorf("%d live pointers in backing array, want %d: vacated slots must be cleared",
			live, r.Len())
	}
	for r.Len() > 0 {
		r.PopFront()
	}
	for i := 0; i < len(r.buf); i++ {
		if r.buf[i] != nil {
			t.Fatalf("drained ring retains a pointer at slot %d", i)
		}
	}
}

// TestRingWraparound exercises growth while head > 0 (the copy-out in
// grow must linearize the wrapped contents) and FIFO order across wraps.
func TestRingWraparound(t *testing.T) {
	var r Ring[int]
	next, expect := 0, 0
	push := func(n int) {
		for i := 0; i < n; i++ {
			r.PushBack(next)
			next++
		}
	}
	pop := func(n int) {
		for i := 0; i < n; i++ {
			if got := r.PopFront(); got != expect {
				t.Fatalf("PopFront = %d, want %d", got, expect)
			}
			expect++
		}
	}
	push(6)
	pop(4)   // head advances
	push(10) // wraps, then grows with head > 0
	pop(12)
	push(3)
	pop(3)
	if r.Len() != 0 {
		t.Fatalf("ring not empty: %d", r.Len())
	}
}
