package faults

import (
	"packetshader/internal/obs"
	"packetshader/internal/sim"
)

// Target is what a fault plan acts on. internal/core.Router implements
// it; tests substitute fakes. Implementations must be non-blocking:
// injections run in scheduler context (sim.Env.At callbacks), not in a
// process.
type Target interface {
	// SetCarrier raises or drops the carrier of one port (RX and TX).
	SetCarrier(port int, up bool)
	// RxDropBurst discards port's RX arrivals for d of virtual time.
	RxDropBurst(port int, d sim.Duration)
	// FailGPU stalls node's GPU until RepairGPU.
	FailGPU(node int)
	// RepairGPU restores node's GPU.
	RepairGPU(node int)
	// RetrainPCIe sets node's GPU-link β-divisor (1 = full speed).
	RetrainPCIe(node int, divisor int)
}

// Injector arms a Plan against a Target on a simulation environment.
type Injector struct {
	env  *sim.Env
	plan *Plan
	tgt  Target

	tr    *obs.Tracer
	track obs.TrackID

	// recs holds one delivery record per armed plan event. Each
	// scheduler callback owns exactly its own record (captured
	// loop-locally in Arm), so deliveries share no mutable state;
	// Injected merges the records at read time.
	recs []delivery
}

// delivery is the per-armed-event record: the event itself and how many
// times it has fired (0 or 1; kept a counter so merged totals read
// naturally).
type delivery struct {
	ev    Event
	count uint64
}

// NewInjector binds plan to tgt on env. Call Arm to schedule.
func NewInjector(env *sim.Env, plan *Plan, tgt Target) *Injector {
	return &Injector{env: env, plan: plan, tgt: tgt}
}

// SetTrace attaches a tracer track; each injected event is recorded as
// an instant on it. Call before Arm.
func (in *Injector) SetTrace(tr *obs.Tracer, track obs.TrackID) {
	in.tr = tr
	in.track = track
}

// Arm schedules every plan event at now+Event.At on the virtual clock.
// Events fire in scheduler context and apply the fault directly to the
// target, so injection timing is exact and independent of process
// scheduling. Each callback captures a pointer to its own delivery
// record, so the only state a delivery mutates is per-event by
// construction — no two callbacks share a counter.
func (in *Injector) Arm() {
	now := in.env.Now()
	events := in.plan.Events()
	in.recs = make([]delivery, len(events))
	for i, ev := range events {
		in.recs[i].ev = ev
	}
	for i := range in.recs {
		rec := &in.recs[i]
		in.env.At(now+sim.Time(rec.ev.At), func() {
			in.apply(rec.ev)
			rec.count++
			in.tr.Instant(in.track, rec.ev.Kind.String(), in.env.Now(),
				obs.Arg{Key: "port", Val: int64(rec.ev.Port)},
				obs.Arg{Key: "node", Val: int64(rec.ev.Node)})
		})
	}
}

// Injected reports how many plan events of kind k have been delivered,
// merged from the per-event records at read time.
func (in *Injector) Injected(k Kind) uint64 {
	var n uint64
	for i := range in.recs {
		if in.recs[i].ev.Kind == k {
			n += in.recs[i].count
		}
	}
	return n
}

// apply dispatches one fault to the target.
func (in *Injector) apply(ev Event) {
	switch ev.Kind {
	case KindLinkDown:
		in.tgt.SetCarrier(ev.Port, false)
	case KindLinkUp:
		in.tgt.SetCarrier(ev.Port, true)
	case KindGPUFail:
		in.tgt.FailGPU(ev.Node)
	case KindGPURepair:
		in.tgt.RepairGPU(ev.Node)
	case KindPCIeRetrain:
		in.tgt.RetrainPCIe(ev.Node, ev.Div)
	case KindPCIeRestore:
		in.tgt.RetrainPCIe(ev.Node, 1)
	case KindRxDropBurst:
		in.tgt.RxDropBurst(ev.Port, ev.Dur)
	}
}
