package route

import "packetshader/internal/packet"

// LinearLPM is a reference longest-prefix-match implementation (linear
// scan over all prefixes). It is O(n) per lookup and exists purely as a
// correctness oracle for the fast lookup structures in
// internal/lookup/ipv4 and internal/lookup/ipv6.
type LinearLPM struct {
	entries []Entry
}

// NewLinearLPM builds an oracle over the given entries.
func NewLinearLPM(entries []Entry) *LinearLPM {
	cp := make([]Entry, len(entries))
	copy(cp, entries)
	return &LinearLPM{entries: cp}
}

// Lookup returns the next hop of the longest matching prefix, or NoRoute.
func (l *LinearLPM) Lookup(addr packet.IPv4Addr) uint16 {
	best := -1
	hop := NoRoute
	for _, e := range l.entries {
		if int(e.Prefix.Len) > best && e.Prefix.Contains(addr) {
			best = int(e.Prefix.Len)
			hop = e.NextHop
		}
	}
	return hop
}

// LinearLPM6 is the IPv6 reference oracle.
type LinearLPM6 struct {
	entries []Entry6
}

// NewLinearLPM6 builds an oracle over the given entries.
func NewLinearLPM6(entries []Entry6) *LinearLPM6 {
	cp := make([]Entry6, len(entries))
	copy(cp, entries)
	return &LinearLPM6{entries: cp}
}

// Lookup returns the next hop of the longest matching prefix, or NoRoute.
func (l *LinearLPM6) Lookup(hi, lo uint64) uint16 {
	best := -1
	hop := NoRoute
	for _, e := range l.entries {
		if int(e.Prefix6.Len) > best && e.Prefix6.Contains(hi, lo) {
			best = int(e.Prefix6.Len)
			hop = e.NextHop
		}
	}
	return hop
}
