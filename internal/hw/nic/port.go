package nic

import (
	"math"
	"strconv"

	"packetshader/internal/hw/pcie"
	"packetshader/internal/model"
	"packetshader/internal/packet"
	"packetshader/internal/sim"
)

// FrameSource synthesizes the frames a queue receives. Implementations
// live in internal/pktgen; the NIC materializes Bufs lazily so that
// multi-10G rates do not require one simulator event per packet.
type FrameSource interface {
	// Fill writes the frame for the seq-th packet of the given
	// port/queue into b.Data (already sized) and sets b.Hash.
	Fill(b *packet.Buf, port, queue int, seq uint64)
}

// RxQueue is one RSS receive queue of a port, modelled as a fluid
// arrival process into a bounded descriptor ring. Packets become
// concrete Bufs only when fetched.
type RxQueue struct {
	Port, ID int

	env  *sim.Env
	cap  int
	pool *packet.BufPool

	rate    float64 // offered packets/s for this queue
	pktSize int
	src     FrameSource
	// spacing memoizes DurationFromSeconds(1/rate): Fetch needs it per
	// call and the rate only changes in SetOffered.
	spacing sim.Duration

	lastUpd sim.Time
	occ     float64 // packets waiting (fractional accumulation)
	// dropAcc carries the fractional part of overflowed packets between
	// updates so Stats.Dropped counts whole packets exactly: truncating
	// each sub-packet overflow would lose it forever under fine-grained
	// update steps.
	dropAcc float64
	fetched uint64 // sequence number of next packet to materialize

	// carrierDown models link loss (fault injection): while down the
	// peer sees no carrier either, so nothing arrives — the fluid
	// process accrues neither packets nor drops.
	carrierDown bool
	// burstUntil, when ahead of lastUpd, marks an RX drop burst: frames
	// arriving before it are discarded at the ring (counted in
	// Stats.Dropped) instead of accumulating.
	burstUntil sim.Time

	// dmaPath lists the IOHs the RX DMA crosses (one for local
	// placement; both when NUMA-blind placement crosses nodes, §4.5).
	dmaPath []*pcie.IOH
	// dmaDone is when the latest fetch's RX DMA completes: the NIC DMAs
	// asynchronously while the CPU processes recent packets, so a fetch
	// only stalls when the in-flight DMA falls behind the prefetch
	// pipeline depth (i.e. the IOH is the bottleneck). dmaBatches and
	// dmaCompleted track batch completions for exact RX throughput
	// accounting; the ring reuses one backing array for the lifetime of
	// the queue (a plain slice re-sliced forward reallocates every
	// refill).
	dmaDone      sim.Time
	dmaBatches   sim.Ring[rxDMABatch]
	dmaCompleted uint64

	// Stats are the per-queue counters of §4.4.
	Stats QueueStats

	irq *sim.Signal
	// Moderation is the NIC interrupt-moderation delay applied when a
	// blocked reader is woken (§6.4).
	Moderation sim.Duration
}

// QueueStats are per-queue counters (per-queue rather than per-NIC to
// avoid the shared-counter cache bouncing of §4.4).
type QueueStats struct {
	Packets uint64
	Bytes   uint64
	Dropped uint64
}

// NewRxQueue creates a queue with the given descriptor-ring capacity.
func NewRxQueue(env *sim.Env, port, id, ringCap int, pool *packet.BufPool, dmaPath []*pcie.IOH) *RxQueue {
	return &RxQueue{
		Port: port, ID: id, env: env, cap: ringCap, pool: pool,
		dmaPath:    dmaPath,
		irq:        sim.NewSignal(env),
		Moderation: sim.Duration(model.InterruptModerationNs * float64(sim.Nanosecond)),
	}
}

// SetOffered sets the queue's offered load: rate packets/s of pktSize-
// byte frames drawn from src.
func (q *RxQueue) SetOffered(rate float64, pktSize int, src FrameSource) {
	q.update()
	q.rate = rate
	q.pktSize = pktSize
	q.src = src
	q.spacing = 0
	if rate > 0 {
		q.spacing = sim.DurationFromSeconds(1 / rate)
	}
}

// SetDMAPath replaces the DMA path (placement-policy ablations).
func (q *RxQueue) SetDMAPath(path []*pcie.IOH) { q.dmaPath = path }

// SetCarrier raises or drops the queue's carrier. The fluid process is
// advanced first so the transition splits the integration window at the
// exact event time, keeping the arrival count independent of when the
// next reader happens to poll.
func (q *RxQueue) SetCarrier(up bool) {
	q.update()
	q.carrierDown = !up
}

// CarrierUp reports the link state (true before any fault injection).
func (q *RxQueue) CarrierUp() bool { return !q.carrierDown }

// DropBurst discards everything the queue receives for the next d of
// virtual time (an injected ring-corruption/driver-pause burst). Counted
// in Stats.Dropped. Overlapping bursts extend, not stack.
func (q *RxQueue) DropBurst(d sim.Duration) {
	q.update()
	if until := q.env.Now() + sim.Time(d); until > q.burstUntil {
		q.burstUntil = until
	}
}

// update advances the fluid arrival process to now, dropping overflow.
func (q *RxQueue) update() {
	now := q.env.Now()
	if now <= q.lastUpd {
		return
	}
	if q.carrierDown {
		q.lastUpd = now
		return
	}
	dt := sim.Duration(now - q.lastUpd).Seconds()
	if q.burstUntil > q.lastUpd {
		// The window's prefix up to burstUntil is inside a drop burst:
		// those arrivals go straight to Dropped (via dropAcc, so whole
		// packets are counted exactly across burst edges).
		end := now
		if q.burstUntil < end {
			end = q.burstUntil
		}
		burstDt := sim.Duration(end - q.lastUpd).Seconds()
		q.dropAcc += q.rate * burstDt
		if whole := math.Floor(q.dropAcc); whole > 0 {
			q.Stats.Dropped += uint64(whole)
			q.dropAcc -= whole
		}
		dt -= burstDt
	}
	q.lastUpd = now
	arrived := q.rate * dt
	q.occ += arrived
	if q.occ > float64(q.cap) {
		q.dropAcc += q.occ - float64(q.cap)
		q.occ = float64(q.cap)
		if whole := math.Floor(q.dropAcc); whole > 0 {
			q.Stats.Dropped += uint64(whole)
			q.dropAcc -= whole
		}
	}
}

// Available returns how many whole packets are waiting right now.
func (q *RxQueue) Available() int {
	q.update()
	return int(q.occ)
}

// Fetch materializes up to max waiting packets, blocking p for the RX
// DMA they consumed on the queue's IOH path. Packets carry GenAt
// timestamps reconstructed from the fluid arrival spacing. Returns nil
// if nothing is waiting.
func (q *RxQueue) Fetch(p *sim.Proc, max int, out []*packet.Buf) []*packet.Buf {
	// Wait until the previous batch's DMA is within the prefetch
	// pipeline depth: DMA overlaps CPU work on recent packets, but the
	// CPU cannot run unboundedly ahead of a saturated IOH.
	if edge := q.dmaDone - sim.Time(model.RxDMAPipelineNs*float64(sim.Nanosecond)); edge > q.env.Now() {
		p.SleepUntil(edge)
	}
	q.reapDMA()
	q.update()
	n := int(q.occ)
	if n > max {
		n = max
	}
	if n <= 0 {
		return out
	}
	now := q.env.Now()
	spacing := q.spacing
	for i := 0; i < n; i++ {
		b := q.pool.Get(q.pktSize)
		b.Port = q.Port
		b.Queue = q.ID
		// The i-th oldest of the occ waiting packets arrived about
		// (occ-1-i)×spacing ago.
		age := sim.Duration(q.occ-1-float64(i)) * spacing
		if age < 0 {
			age = 0
		}
		b.GenAt = now - sim.Time(age)
		if q.src != nil {
			q.src.Fill(b, q.Port, q.ID, q.fetched+uint64(i))
		}
		out = append(out, b)
	}
	q.occ -= float64(n)
	q.fetched += uint64(n)
	q.Stats.Packets += uint64(n)
	q.Stats.Bytes += uint64(n * q.pktSize)
	// RX DMA: descriptors + frame data cross the IOH(s) to reach host
	// memory. The charge is scheduled now and gates the *next* fetch —
	// the IOH is the resource whose saturation caps RX throughput
	// (§3.2, §4.6), but DMA overlaps CPU work on the current batch.
	bytes := n * (q.pktSize + model.DMADescBytes)
	for _, ioh := range q.dmaPath {
		if t := ioh.ScheduleUp(bytes); t > q.dmaDone {
			q.dmaDone = t
		}
	}
	q.dmaBatches.PushBack(rxDMABatch{done: q.dmaDone, pkts: uint64(n)})
	return out
}

type rxDMABatch struct {
	done sim.Time
	pkts uint64
}

func (q *RxQueue) reapDMA() {
	now := q.env.Now()
	for q.dmaBatches.Len() > 0 && q.dmaBatches.Front().done <= now {
		q.dmaCompleted += q.dmaBatches.PopFront().pkts
	}
}

// CompletedDMA returns how many fetched packets have fully crossed the
// IOH into host memory — the exact RX throughput measure (fetched
// packets whose DMA is still in flight are excluded).
func (q *RxQueue) CompletedDMA() uint64 {
	q.reapDMA()
	return q.dmaCompleted
}

// TimeToPacket returns how long until at least one whole packet is
// available (0 if one already is). ok is false when the queue is empty
// and has no offered load (it would never produce a packet).
func (q *RxQueue) TimeToPacket() (d sim.Duration, ok bool) {
	q.update()
	if q.occ >= 1 {
		return 0, true
	}
	if q.rate <= 0 {
		return 0, false
	}
	if q.carrierDown {
		// Link down but load is configured: the carrier may come back
		// (fault injection), so the reader must keep polling rather
		// than retire. One moderation interval is the poll cadence.
		return q.Moderation, true
	}
	return sim.DurationFromSeconds((1 - q.occ) / q.rate), true
}

// WaitForPackets blocks p until the queue has at least one packet,
// modelling the interrupt-enabled idle state of §5.2 (plus interrupt
// moderation latency). Returns false if the queue has no offered load
// (would block forever).
func (q *RxQueue) WaitForPackets(p *sim.Proc) bool {
	q.update()
	if q.occ >= 1 {
		return true
	}
	if q.rate <= 0 {
		return false
	}
	if q.carrierDown {
		// No arrivals while the link is down; sleep one moderation
		// interval and report alive so the caller re-polls.
		p.Sleep(q.Moderation)
		q.update()
		return true
	}
	// Time until the next whole packet accumulates, plus moderation.
	need := 1 - q.occ
	wait := sim.DurationFromSeconds(need/q.rate) + q.Moderation
	p.Sleep(wait)
	q.update()
	return true
}

// TxPort serializes transmissions of one 10GbE port at line rate; the
// TX DMA to the NIC crosses the port's IOH first.
type TxPort struct {
	ID  int
	env *sim.Env

	wire    *sim.Server
	dmaPath []*pcie.IOH
	ringCap int

	// Stats counts completed transmissions; Dropped counts packets
	// discarded because the TX ring was full (output overload) or
	// because the carrier was down.
	Stats QueueStats
	// carrierDown models link loss on the TX side: frames handed to a
	// carrier-down port are dropped immediately (the driver cannot post
	// them), without blocking the worker.
	carrierDown bool
	// CarrierDrops counts the Dropped subset attributable to carrier
	// loss, so fault accounting separates it from ring overflow.
	CarrierDrops uint64

	// completions tracks scheduled batches (completion time of the
	// batch's last packet, cumulative wire time, descriptor count) so
	// Delivered can report exactly the wire time finished by "now" and
	// pending can track true ring occupancy. A ring, so steady-state
	// transmission reuses one backing array.
	completions   sim.Ring[completion]
	deliveredWire sim.Duration
	// pending counts descriptors posted and not yet wire-completed.
	pending int

	// OnComplete, if set, observes each packet at wire-transmission
	// completion (the generator's sink uses it for RTT measurement).
	// The callback must not block; the Buf is released afterwards.
	OnComplete func(b *packet.Buf, at sim.Time)
}

// NewTxPort creates the TX side of a port.
func NewTxPort(env *sim.Env, id, ringCap int, dmaPath []*pcie.IOH) *TxPort {
	return &TxPort{
		ID: id, env: env,
		wire:    sim.NewServer(env, "tx"+strconv.Itoa(id)+"-wire"),
		dmaPath: dmaPath,
		ringCap: ringCap,
	}
}

type completion struct {
	done sim.Time
	wire sim.Duration
	pkts int
}

// Transmit queues bufs for transmission. Packets that do not fit the TX
// ring (backlog measured in wire time) are dropped, as a real NIC's full
// descriptor ring forces the driver to do. The caller does not block;
// DMA and serialization proceed in virtual time.
// SetCarrier raises or drops the port's TX carrier.
func (t *TxPort) SetCarrier(up bool) { t.carrierDown = !up }

// CarrierUp reports the TX link state.
func (t *TxPort) CarrierUp() bool { return !t.carrierDown }

func (t *TxPort) Transmit(bufs []*packet.Buf) {
	if len(bufs) == 0 {
		return
	}
	if t.carrierDown {
		t.Stats.Dropped += uint64(len(bufs))
		t.CarrierDrops += uint64(len(bufs))
		for _, b := range bufs {
			b.Release()
		}
		return
	}
	t.reap()
	var batchWire sim.Duration
	var batchDone sim.Time
	var batchPkts int
	for _, b := range bufs {
		// Ring occupancy check: descriptors posted but not yet
		// transmitted.
		if t.pending >= t.ringCap {
			t.Stats.Dropped++
			b.Release()
			continue
		}
		wt := model.WireTime(b.Size())
		var dmaDone sim.Time
		for _, ioh := range t.dmaPath {
			if d := ioh.ScheduleDown(b.Size() + model.DMADescBytes); d > dmaDone {
				dmaDone = d
			}
		}
		done := t.wire.ScheduleAt(dmaDone, wt)
		t.Stats.Packets++
		t.Stats.Bytes += uint64(b.Size())
		t.pending++
		batchWire += wt
		batchDone = done
		batchPkts++
		if t.OnComplete != nil {
			t.OnComplete(b, done)
		}
		b.Release()
	}
	if batchPkts > 0 {
		t.completions.PushBack(completion{batchDone, batchWire, batchPkts})
	}
}

// TransmitBlocking is Transmit with driver backpressure: when the TX
// ring is full the calling process blocks until descriptors free up
// instead of dropping (what a user-level forwarder does — §5.2's
// engine checks ring occupancy). This pushes overload back to the RX
// rings, where excess packets are dropped before consuming any IOH
// bandwidth.
func (t *TxPort) TransmitBlocking(p *sim.Proc, bufs []*packet.Buf) {
	if len(bufs) == 0 {
		return
	}
	if t.carrierDown {
		// Carrier loss is not backpressure: the worker must not park on
		// a dead port. Drop and account immediately.
		t.Transmit(bufs)
		return
	}
	t.reap()
	for t.pending+len(bufs) > t.ringCap && t.completions.Len() > 0 {
		next := t.completions.Front().done
		if next <= p.Now() {
			t.reap()
			continue
		}
		p.SleepUntil(next)
		t.reap()
	}
	t.Transmit(bufs)
}

// reap folds finished batches into the delivered tally.
func (t *TxPort) reap() {
	now := t.env.Now()
	for t.completions.Len() > 0 && t.completions.Front().done <= now {
		c := t.completions.PopFront()
		t.deliveredWire += c.wire
		t.pending -= c.pkts
	}
}

// Pending returns the current TX ring occupancy in descriptors.
func (t *TxPort) Pending() int {
	t.reap()
	return t.pending
}

// Backlog returns the current wire-time backlog.
func (t *TxPort) Backlog() sim.Duration { return t.wire.Backlog() }

// Delivered returns the cumulative wire time of batches fully
// transmitted by now. Dividing by elapsed time gives the port's
// delivered line utilization — the throughput metric the experiments
// report. (The at-most-one partially transmitted batch per port is not
// counted; over millisecond windows the error is negligible.)
func (t *TxPort) Delivered() sim.Duration {
	t.reap()
	return t.deliveredWire
}
